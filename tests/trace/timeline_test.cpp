// Trace-rendering tests: the ASCII timeline and bin heatmap are consumed by
// humans, so their exact encoding is pinned here.
#include "trace/timeline.h"

#include <gtest/gtest.h>

#include "agreement/testbed.h"
#include "sim/simulator.h"

namespace apex::trace {
namespace {

TEST(Timeline, RendersSpansInBuckets) {
  Timeline tl({"P0", "P1"}, 0, 100, 10);
  tl.add({0, 0, 50, 'A'});    // first half of lane 0
  tl.add({1, 50, 100, 'B'});  // second half of lane 1
  const std::string out = tl.render();
  EXPECT_NE(out.find("P0 AAAAA     "), std::string::npos) << out;
  EXPECT_NE(out.find("P1      BBBBB"), std::string::npos) << out;
}

TEST(Timeline, LaterSpansOverdraw) {
  Timeline tl({"L"}, 0, 10, 10);
  tl.add({0, 0, 10, 'x'});
  tl.add({0, 4, 6, 'Y'});
  const std::string out = tl.render();
  EXPECT_NE(out.find("xxxxYYxxxx"), std::string::npos) << out;
}

TEST(Timeline, RulersDrawnOnEmptyBuckets) {
  Timeline tl({"L"}, 0, 10, 10);
  tl.add({0, 0, 3, 'c'});
  tl.add_ruler(2);  // covered by span -> span wins
  tl.add_ruler(5);  // empty -> ruler
  const std::string out = tl.render();
  EXPECT_NE(out.find("ccc  |"), std::string::npos) << out;
}

TEST(Timeline, SpansOutsideWindowIgnored) {
  Timeline tl({"L"}, 100, 200, 10);
  tl.add({0, 0, 50, 'x'});
  tl.add({0, 300, 400, 'y'});
  const std::string out = tl.render();
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_EQ(out.find('y'), std::string::npos);
}

TEST(Timeline, Validates) {
  EXPECT_THROW(Timeline({"L"}, 10, 10, 10), std::invalid_argument);
  EXPECT_THROW(Timeline({"L"}, 0, 10, 0), std::invalid_argument);
  Timeline tl({"L"}, 0, 10, 10);
  EXPECT_THROW(tl.add({5, 0, 1, 'x'}), std::out_of_range);
}

TEST(CyclesTimeline, TagsFocusOtherAndStale) {
  std::vector<agreement::CycleRecord> recs;
  agreement::CycleRecord a;  // focus bin, current phase
  a.proc = 0;
  a.bin = 3;
  a.phase = 2;
  a.s_time = 0;
  a.d_time = 10;
  a.f_time = 20;
  agreement::CycleRecord b;  // other bin
  b.proc = 1;
  b.bin = 1;
  b.phase = 2;
  b.s_time = 20;
  b.d_time = 30;
  b.f_time = 40;
  agreement::CycleRecord c;  // stale phase on focus bin -> clobber
  c.proc = 1;
  c.bin = 3;
  c.phase = 1;
  c.s_time = 60;
  c.d_time = 70;
  c.f_time = 80;
  recs = {a, b, c};
  const auto tl = cycles_timeline(recs, 2, /*focus=*/3, /*phase=*/2, 0, 80, 16);
  const std::string out = tl.render();
  EXPECT_NE(out.find('S'), std::string::npos) << out;
  EXPECT_NE(out.find('W'), std::string::npos) << out;
  EXPECT_NE(out.find('.'), std::string::npos) << out;
  EXPECT_NE(out.find('!'), std::string::npos) << out;
}

TEST(BinHeatmap, EncodesDistinctValuesAsLetters) {
  sim::Simulator sim(sim::SimConfig{1, 0, 1},
                     std::make_unique<sim::RoundRobinSchedule>(1));
  agreement::BinArray bins(sim.memory(), 2, 8);
  // bin 0: cells 0..3 value 7, cells 4,5 value 9 (conflict), 6..7 empty.
  for (std::size_t j = 0; j < 4; ++j)
    sim.memory().at(bins.addr(0, j)) = sim::Cell{7, 1};
  for (std::size_t j = 4; j < 6; ++j)
    sim.memory().at(bins.addr(0, j)) = sim::Cell{9, 1};
  EXPECT_EQ(bin_row(bins, 0, 1), "aaaa|bb..");
  // bin 1: untouched (stamp 0) -> all empty.
  EXPECT_EQ(bin_row(bins, 1, 1), "....|....");
  const std::string hm = bin_heatmap(bins, 1);
  EXPECT_NE(hm.find("bin0"), std::string::npos);
  EXPECT_NE(hm.find("bin1"), std::string::npos);
}

TEST(BinHeatmap, UnanimousBinIsOneLetter) {
  sim::Simulator sim(sim::SimConfig{1, 0, 1},
                     std::make_unique<sim::RoundRobinSchedule>(1));
  agreement::BinArray bins(sim.memory(), 1, 4);
  for (std::size_t j = 0; j < 4; ++j)
    sim.memory().at(bins.addr(0, j)) = sim::Cell{42, 5};
  EXPECT_EQ(bin_row(bins, 0, 5), "aa|aa");
}

TEST(EndToEnd, TimelineFromLiveAgreementRun) {
  agreement::TestbedConfig cfg;
  cfg.n = 8;
  cfg.seed = 3;
  agreement::AgreementTestbed tb(cfg, agreement::uniform_task(16),
                                 agreement::uniform_support(16));
  struct Rec final : agreement::AgreementObserver {
    std::vector<agreement::CycleRecord> records;
    void on_cycle(const agreement::CycleRecord& r) override {
      records.push_back(r);
    }
  } rec;
  tb.attach(&rec);
  tb.run_until_agreement(1'000'000);
  ASSERT_FALSE(rec.records.empty());
  const auto tl = cycles_timeline(rec.records, 8, 0, 1, 0,
                                  tb.simulator().total_work(), 64);
  const std::string out = tl.render();
  // All 8 lanes present and someone worked on bin 0 in phase 1.
  EXPECT_NE(out.find("P7"), std::string::npos);
  EXPECT_NE(out.find('W'), std::string::npos) << out;
}

namespace {
sim::ProcTask rw_proc(sim::Ctx& ctx, std::size_t addr, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ctx.write(addr, 1, 1);
    co_await ctx.read(addr);
    co_await ctx.local();
  }
}
}  // namespace

TEST(ProcActivityTimeline, RecordsStepsThroughObserverChain) {
  // The recorder rides the simulator's observer chain alongside any other
  // observers and renders per-proc read/write/local activity.
  sim::SimConfig cfg{2, 4, 1};
  sim::Simulator s(cfg, std::make_unique<sim::RoundRobinSchedule>(2));
  s.spawn([](sim::Ctx& c) { return rw_proc(c, 0, 5); });
  s.spawn([](sim::Ctx& c) { return rw_proc(c, 1, 5); });
  ProcActivityTimeline tl(2);
  s.add_observer(&tl);
  s.run(1000);
  EXPECT_EQ(tl.events(), s.total_work());
  const std::string out = tl.render(32);
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
  EXPECT_NE(out.find('w'), std::string::npos) << out;
  EXPECT_NE(out.find('r'), std::string::npos) << out;
}

TEST(ProcActivityTimeline, EmptyRunRendersEmpty) {
  ProcActivityTimeline tl(3);
  EXPECT_EQ(tl.render(), "");
  EXPECT_EQ(tl.events(), 0u);
}

}  // namespace
}  // namespace apex::trace
