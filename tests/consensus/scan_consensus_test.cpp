#include "consensus/scan_consensus.h"

#include <gtest/gtest.h>

#include "agreement/testbed.h"
#include "util/math.h"

namespace apex::consensus {
namespace {

ScanConfig make_cfg(std::size_t n, std::uint64_t seed,
                    sim::ScheduleKind kind = sim::ScheduleKind::kUniformRandom) {
  ScanConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.schedule = kind;
  return cfg;
}

TEST(ScanConsensus, AllProcessorsDecideIdentically) {
  const std::size_t n = 16;
  ScanConsensus sc(make_cfg(n, 3), agreement::uniform_task(1000));
  const auto res = sc.run(50'000'000);
  ASSERT_TRUE(res.completed);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(sc.decisions_of(p)[i].has_value()) << p << "," << i;
      EXPECT_EQ(*sc.decisions_of(p)[i], res.values[i])
          << "proc " << p << " disagrees on value " << i;
    }
  }
}

TEST(ScanConsensus, ValuesAreInSupport) {
  const std::size_t n = 8;
  ScanConsensus sc(make_cfg(n, 5), agreement::uniform_task(50));
  const auto res = sc.run(10'000'000);
  ASSERT_TRUE(res.completed);
  for (const auto v : res.values) EXPECT_LT(v, 50u);
}

TEST(ScanConsensus, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    ScanConsensus sc(make_cfg(8, seed), agreement::uniform_task(100));
    return sc.run(10'000'000).values;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(ScanConsensus, WorkIsQuadraticPerValueShape) {
  // Per value, every processor scans all n registers at least once:
  // total work >= n * n * n reads across n values.  And the bin-array
  // protocol beats it by an unbounded factor as n grows — the E10 claim.
  auto work_for = [](std::size_t n) {
    ScanConsensus sc(make_cfg(n, 7), agreement::uniform_task(100));
    const auto res = sc.run(1'000'000'000);
    EXPECT_TRUE(res.completed);
    return res.total_work;
  };
  const auto w8 = work_for(8);
  const auto w32 = work_for(32);
  EXPECT_GE(w8, 8ull * 8 * 8);
  EXPECT_GE(w32, 32ull * 32 * 32);
  // n grew 4x; cubic-ish total work should grow ~64x; require >= 20x to
  // confirm the super-quadratic shape without being flaky.
  EXPECT_GT(w32, 20 * w8);
}

TEST(ScanConsensus, SlowerThanBinArrayAgreementAtModestN) {
  const std::size_t n = 64;
  ScanConsensus sc(make_cfg(n, 11), agreement::uniform_task(100));
  const auto scan_res = sc.run(2'000'000'000);
  ASSERT_TRUE(scan_res.completed);

  agreement::TestbedConfig tb_cfg;
  tb_cfg.n = n;
  tb_cfg.seed = 11;
  agreement::AgreementTestbed tb(tb_cfg, agreement::uniform_task(100),
                                 agreement::uniform_support(100));
  const auto agree_res = tb.run_until_agreement(1'000'000'000);
  ASSERT_TRUE(agree_res.satisfied);

  EXPECT_GT(scan_res.total_work, agree_res.work)
      << "baseline should already lose at n=64";
}

TEST(ScanConsensus, SurvivesHostileSchedules) {
  for (auto kind : {sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst}) {
    ScanConsensus sc(make_cfg(8, 13, kind), agreement::uniform_task(100));
    const auto res = sc.run(100'000'000);
    EXPECT_TRUE(res.completed) << sim::schedule_kind_name(kind);
  }
}

}  // namespace
}  // namespace apex::consensus
