// Round-trip pinning:
//   1. compile(emit_pram(p)) == p bit-for-bit for every registry workload
//      (the emitter/compiler pair loses nothing).
//   2. The SHIPPED kernels/*.pram sources compile to programs bit-for-bit
//      identical to their registry twins (prefix/bfs/spmv at n=8) — the
//      files on disk are real, current, and runnable.
//   3. The committed IR goldens (kernels/goldens/*.ir.txt) are exactly
//      Program::to_string() of the compiled shipped sources — what
//      `apexcli compile` prints and CI diffs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "lang/compile.h"
#include "lang/emit.h"
#include "pram/workloads.h"

namespace apex::lang {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

testing::AssertionResult programs_equal(const pram::Program& a,
                                        const pram::Program& b) {
  if (a.nthreads() != b.nthreads())
    return testing::AssertionFailure()
           << "nthreads " << a.nthreads() << " vs " << b.nthreads();
  if (a.nvars() != b.nvars())
    return testing::AssertionFailure()
           << "nvars " << a.nvars() << " vs " << b.nvars();
  if (a.nsteps() != b.nsteps())
    return testing::AssertionFailure()
           << "nsteps " << a.nsteps() << " vs " << b.nsteps();
  for (std::size_t s = 0; s < a.nsteps(); ++s)
    for (std::size_t t = 0; t < a.nthreads(); ++t)
      if (!(a.step(s).instrs[t] == b.step(s).instrs[t]))
        return testing::AssertionFailure()
               << "step " << s << " thread " << t << ": "
               << a.step(s).instrs[t].to_string() << " vs "
               << b.step(s).instrs[t].to_string();
  return testing::AssertionSuccess();
}

TEST(RoundTrip, EveryRegistryWorkloadAtN8) {
  for (const auto& spec : pram::workload_registry()) {
    if (!pram::workload_supports_n(spec, 8)) continue;
    const pram::Program p = spec.make(8);
    const std::string src_text = emit_pram(p, std::string(spec.name) + "_n8");
    const CompileResult r =
        compile_source(SourceFile{spec.name, src_text});
    ASSERT_TRUE(r.ok()) << spec.name << ": "
                        << (r.diagnostics.empty()
                                ? "?"
                                : r.diagnostics[0].message);
    EXPECT_TRUE(programs_equal(*r.program, p)) << "workload " << spec.name;
  }
}

TEST(RoundTrip, EmitterCoversLargerInstances) {
  for (const char* name : {"prefix", "bfs", "spmv"}) {
    const pram::WorkloadSpec* spec = pram::find_workload(name);
    ASSERT_NE(spec, nullptr);
    const pram::Program p = spec->make(16);
    const CompileResult r =
        compile_source(SourceFile{name, emit_pram(p, name)});
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_TRUE(programs_equal(*r.program, p)) << name << " n=16";
  }
}

/// The shipped source compiles bit-for-bit to the registry twin, and its
/// committed IR golden is exactly the compiled program's to_string().
void check_shipped(const char* wl) {
  const std::string root = std::string(APEX_SOURCE_DIR) + "/kernels/";
  const std::string file = root + wl + "_n8.pram";
  SourceFile src{file, slurp(file)};
  const CompileResult r = compile_source(src);
  ASSERT_TRUE(r.ok()) << wl << ": "
                      << (r.diagnostics.empty() ? "?"
                                                : r.diagnostics[0].message);
  const pram::Program twin = pram::find_workload(wl)->make(8);
  EXPECT_TRUE(programs_equal(*r.program, twin)) << "shipped " << wl;
  EXPECT_EQ(r.program->to_string(),
            slurp(root + "goldens/" + wl + "_n8.ir.txt"))
      << "IR golden stale for " << wl
      << " (regenerate: apexcli compile kernels/" << wl << "_n8.pram)";
}

TEST(Shipped, PrefixMatchesRegistry) { check_shipped("prefix"); }
TEST(Shipped, BfsMatchesRegistry) { check_shipped("bfs"); }
TEST(Shipped, SpmvMatchesRegistry) { check_shipped("spmv"); }

TEST(Shipped, TutorialCompilesAndGoldenIsFresh) {
  const std::string root = std::string(APEX_SOURCE_DIR) + "/kernels/";
  SourceFile src{root + "tutorial.pram", slurp(root + "tutorial.pram")};
  const CompileResult r = compile_source(src);
  ASSERT_TRUE(r.ok()) << (r.diagnostics.empty() ? "?"
                                                : r.diagnostics[0].message);
  EXPECT_FALSE(r.program->is_nondeterministic());
  EXPECT_EQ(r.program->to_string(), slurp(root + "goldens/tutorial.ir.txt"));
}

}  // namespace
}  // namespace apex::lang
