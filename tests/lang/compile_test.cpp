#include "lang/compile.h"

#include <gtest/gtest.h>

#include "pram/interp.h"

namespace apex::lang {
namespace {

CompileResult compile_text(const std::string& text) {
  return compile_source(SourceFile{"<test>", text});
}

std::string first_message(const CompileResult& r) {
  return r.diagnostics.empty() ? std::string() : r.diagnostics[0].message;
}

TEST(Compile, MinimalProgram) {
  const auto r = compile_text("pram p\nprocs 2\nvars 2\n"
                              "step {\n  0: const v0, 7\n  1: copy v1, v1\n}\n");
  ASSERT_TRUE(r.ok()) << first_message(r);
  const pram::Program& p = *r.program;
  EXPECT_EQ(p.nthreads(), 2u);
  EXPECT_EQ(p.nvars(), 2u);
  EXPECT_EQ(p.nsteps(), 1u);
  EXPECT_EQ(p.step(0).instrs[0], pram::Instr::constant(0, 7));
  EXPECT_EQ(p.step(0).instrs[1], pram::Instr::copy(1, 1));
}

TEST(Compile, NamedVarsAllocateAfterRawPool) {
  // `vars 3` reserves v0..v2; declarations allocate sequentially after.
  const auto r = compile_text(
      "pram p\nprocs 1\nvars 3\nvar a\nvar b[2]\n"
      "step {\n  0: add a, b[0], b[1]\n}\n");
  ASSERT_TRUE(r.ok()) << first_message(r);
  EXPECT_EQ(r.program->nvars(), 6u);
  EXPECT_EQ(r.program->step(0).instrs[0], pram::Instr::add(3, 4, 5));
}

TEST(Compile, GatherWindowAndSegment) {
  const auto r = compile_text(
      "pram p\nprocs 2\nvars 8\nsegment s = v4 : 4\n"
      "step {\n"
      "  0: gather v0, v1, v2, 2\n"
      "  1: gather_dyn v3, v5, v6, v7, s\n"
      "}\n");
  ASSERT_TRUE(r.ok()) << first_message(r);
  EXPECT_EQ(r.program->step(0).instrs[0], pram::Instr::gather(0, 1, 2, 2));
  EXPECT_EQ(r.program->step(0).instrs[1],
            pram::Instr::gather_dyn(3, 5, 6, 7, 4, 4));
}

TEST(Compile, IdleLanesBecomeNops) {
  const auto r = compile_text("pram p\nprocs 3\nvars 1\n"
                              "step {\n  1: const v0, 1\n}\n");
  ASSERT_TRUE(r.ok()) << first_message(r);
  EXPECT_EQ(r.program->step(0).instrs[0].op, pram::OpCode::kNop);
  EXPECT_EQ(r.program->step(0).instrs[2].op, pram::OpCode::kNop);
}

TEST(Compile, NondeterministicOpsAreFlagged) {
  const auto det = compile_text("pram p\nprocs 1\nvars 1\n"
                                "step {\n  0: const v0, 1\n}\n");
  const auto nondet = compile_text("pram p\nprocs 1\nvars 1\n"
                                   "step {\n  0: rand_below v0, 10\n}\n");
  ASSERT_TRUE(det.ok() && nondet.ok());
  EXPECT_FALSE(det.program->is_nondeterministic());
  EXPECT_TRUE(nondet.program->is_nondeterministic());
}

TEST(Compile, CompiledProgramRunsInInterpreter) {
  const auto r = compile_text(
      "pram p\nprocs 2\nvars 4\n"
      "step {\n  0: const v0, 20\n  1: const v1, 22\n}\n"
      "step {\n  0: add v2, v0, v1\n}\n"
      "step {\n  1: sub v3, v1, v0\n}\n");
  ASSERT_TRUE(r.ok()) << first_message(r);
  const auto res = pram::Interpreter(*r.program)
                       .run_deterministic(std::vector<pram::Word>(4, 0));
  EXPECT_EQ(res.memory[2], 42u);
  EXPECT_EQ(res.memory[3], 2u);
}

// ---- semantic diagnostics (messages; caret goldens in diagnostics_test) ----

TEST(Compile, UndefinedVariable) {
  const auto r = compile_text("pram p\nprocs 1\nvars 1\n"
                              "step {\n  0: copy v0, total\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(first_message(r).find("undefined variable 'total'"),
            std::string::npos);
}

TEST(Compile, ErewWriteWriteConflict) {
  const auto r = compile_text("pram p\nprocs 2\nvars 2\n"
                              "step {\n  0: const v0, 1\n  1: const v0, 2\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(first_message(r).find(
                "EREW violation: variable v0 written by more than one thread"),
            std::string::npos);
}

TEST(Compile, ErewReadReadConflict) {
  const auto r = compile_text("pram p\nprocs 2\nvars 3\n"
                              "step {\n  0: copy v1, v0\n  1: copy v2, v0\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(first_message(r).find(
                "EREW violation: variable v0 read by more than one thread"),
            std::string::npos);
}

TEST(Compile, GatherWindowOverlapIsAReadConflict) {
  // Both lanes' windows cover v4: the window marks every cell read.
  const auto r = compile_text(
      "pram p\nprocs 2\nvars 8\n"
      "step {\n"
      "  0: gather v0, v1, v4, 2\n"
      "  1: gather v2, v3, v5, 2\n"
      "}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(first_message(r).find("read by more than one thread"),
            std::string::npos);
}

TEST(Compile, GatherWindowBeyondNvars) {
  const auto r = compile_text("pram p\nprocs 1\nvars 4\n"
                              "step {\n  0: gather v0, v1, v2, 4\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(first_message(r).find("gather window"), std::string::npos);
  EXPECT_NE(first_message(r).find("exceeds vars=4"), std::string::npos);
}

TEST(Compile, SameStepSegmentWrite) {
  const auto r = compile_text(
      "pram p\nprocs 2\nvars 8\nsegment s = v4 : 4\n"
      "step {\n"
      "  0: gather_dyn v0, v1, v2, v3, s\n"
      "  1: const v5, 9\n"
      "}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(
      first_message(r).find("variable v5 written inside gather_dyn segment"),
      std::string::npos);
}

TEST(Compile, SegmentWriteInOtherStepIsFine) {
  const auto r = compile_text(
      "pram p\nprocs 2\nvars 8\nsegment s = v4 : 4\n"
      "step {\n  1: const v5, 9\n}\n"
      "step {\n  0: gather_dyn v0, v1, v2, v3, s\n}\n");
  EXPECT_TRUE(r.ok()) << first_message(r);
}

TEST(Compile, RawVariableIdOverflow) {
  const auto r = compile_text("pram p\nprocs 1\nvars 1\n"
                              "step {\n  0: copy v0, v4294967296\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(first_message(r).find("overflows 32 bits"), std::string::npos);
}

TEST(Compile, LaneOutOfRangeAndDuplicate) {
  const auto out = compile_text("pram p\nprocs 2\nvars 1\n"
                                "step {\n  2: const v0, 1\n}\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(first_message(out).find("lane 2 out of range (procs=2)"),
            std::string::npos);
  const auto dup = compile_text("pram p\nprocs 2\nvars 2\n"
                                "step {\n  0: const v0, 1\n  0: const v1, 2\n}\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(first_message(dup).find("duplicate lane 0"), std::string::npos);
}

TEST(Compile, MissingProcsAndZeroVars) {
  const auto np = compile_text("pram p\nvars 1\nstep {\n  0: nop\n}\n");
  ASSERT_FALSE(np.ok());
  const auto nv = compile_text("pram p\nprocs 1\nstep {\n  0: nop\n}\n");
  ASSERT_FALSE(nv.ok());
}

TEST(Compile, MultipleDiagnosticsAreBatched) {
  // Semantic errors don't stop at the first: both bad refs are reported.
  const auto r = compile_text("pram p\nprocs 1\nvars 1\n"
                              "step {\n  0: add v0, alpha, beta\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics.size(), 2u);
}

TEST(CompileFile, MissingFileIsADiagnosticNotAThrow) {
  SourceFile src;
  const auto r = compile_file("/nonexistent/nope.pram", src);
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].loc.line, 1u);
}

}  // namespace
}  // namespace apex::lang
