// The grammar-based program generator: seed-deterministic, EREW-valid by
// construction, and executable from all-zero memory — the properties the
// fuzz harness's kGrammar protocol depends on.
#include "lang/gen.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "lang/compile.h"
#include "pram/interp.h"

namespace apex::lang {
namespace {

TEST(Gen, DeterministicInSeed) {
  const auto a = generate_program({42, false});
  const auto b = generate_program({42, false});
  EXPECT_EQ(a.source.text, b.source.text);
  const auto c = generate_program({43, false});
  EXPECT_NE(a.source.text, c.source.text);
}

TEST(Gen, CorpusCompilesClean) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto g = generate_program({seed, (seed & 1) != 0});
    const CompileResult r = compile_source(g.source);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ":\n"
                        << render_diagnostics(g.source, r.diagnostics);
    EXPECT_EQ(r.program->nthreads(), g.nthreads) << "seed " << seed;
    EXPECT_EQ(r.program->nvars(), g.nvars) << "seed " << seed;
    EXPECT_EQ(r.program->nsteps(), g.nsteps) << "seed " << seed;
    // The clobber-oracle work cap the fuzz harness applies is only sound
    // for n >= 6; the generator must stay inside that envelope.
    EXPECT_GE(g.nthreads, 6u) << "seed " << seed;
  }
}

TEST(Gen, DeterministicFlagExcludesNondetOps) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto g = generate_program({seed, true});
    const CompileResult r = compile_source(g.source);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    EXPECT_FALSE(r.program->is_nondeterministic()) << "seed " << seed;
  }
}

/// Deterministic generated programs: the reference interpreter's replay
/// from zero memory must match the execution scheme's result on BOTH
/// grant engines — the differential the grammar fuzz protocol runs at
/// scale, pinned here on a small corpus as a tier-1 gate.
TEST(Gen, DeterministicCorpusCrossEngineDifferential) {
  for (std::uint64_t seed : {1, 3, 5, 7, 9}) {
    const auto g = generate_program({seed, true});
    const CompileResult r = compile_source(g.source);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    const pram::Program& p = *r.program;
    const auto ref = pram::Interpreter(p).run_deterministic(
        std::vector<pram::Word>(p.nvars(), 0));
    for (const auto engine :
         {sim::GrantEngine::kBatched, sim::GrantEngine::kSingleStep}) {
      exec::ExecConfig cfg;
      cfg.seed = seed;
      cfg.engine = engine;
      const auto chk =
          exec::run_checked(p, exec::Scheme::kNondeterministic, cfg);
      ASSERT_TRUE(chk.result.completed) << "seed " << seed;
      ASSERT_TRUE(chk.consistency_error.empty())
          << "seed " << seed << ": " << chk.consistency_error;
      EXPECT_EQ(chk.result.memory, ref.memory)
          << "seed " << seed << " diverged from interpreter";
    }
  }
}

}  // namespace
}  // namespace apex::lang
