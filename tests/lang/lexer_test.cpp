#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace apex::lang {
namespace {

std::vector<Token> lex_ok(const std::string& text) {
  SourceFile src{"<test>", text};
  std::vector<Diagnostic> diags;
  auto toks = lex(src, diags);
  EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : diags[0].message);
  return toks;
}

TEST(Lexer, TokenKindsAndValues) {
  const auto toks = lex_ok("pram demo { } [ ] , : = 42");
  ASSERT_EQ(toks.size(), 11u);  // 10 tokens + kEnd
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "pram");
  EXPECT_EQ(toks[1].text, "demo");
  EXPECT_EQ(toks[2].kind, TokKind::kLBrace);
  EXPECT_EQ(toks[3].kind, TokKind::kRBrace);
  EXPECT_EQ(toks[4].kind, TokKind::kLBracket);
  EXPECT_EQ(toks[5].kind, TokKind::kRBracket);
  EXPECT_EQ(toks[6].kind, TokKind::kComma);
  EXPECT_EQ(toks[7].kind, TokKind::kColon);
  EXPECT_EQ(toks[8].kind, TokKind::kEq);
  EXPECT_EQ(toks[9].kind, TokKind::kInt);
  EXPECT_EQ(toks[9].value, 42u);
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(Lexer, LocationsAreOneBasedLineAndCol) {
  const auto toks = lex_ok("pram p\n  procs 4\n");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[1].loc.col, 6u);
  EXPECT_EQ(toks[2].loc.line, 2u);
  EXPECT_EQ(toks[2].loc.col, 3u);   // after two-space indent
  EXPECT_EQ(toks[3].loc.line, 2u);
  EXPECT_EQ(toks[3].loc.col, 9u);
}

TEST(Lexer, CommentsRunToEndOfLine) {
  const auto toks = lex_ok("# whole-line comment\npram x # trailing\n42");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "pram");
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].value, 42u);
}

TEST(Lexer, UnderscoreIdentifiers) {
  const auto toks = lex_ok("_x gather_dyn a1_b2");
  EXPECT_EQ(toks[0].text, "_x");
  EXPECT_EQ(toks[1].text, "gather_dyn");
  EXPECT_EQ(toks[2].text, "a1_b2");
}

TEST(Lexer, MaxUint64Literal) {
  const auto toks = lex_ok("18446744073709551615");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].value, 18446744073709551615ULL);
}

TEST(Lexer, IntegerOverflowIsDiagnosed) {
  SourceFile src{"<test>", "pram p\n18446744073709551616"};
  std::vector<Diagnostic> diags;
  const auto toks = lex(src, diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("does not fit in 64 bits"),
            std::string::npos);
  EXPECT_EQ(diags[0].loc.line, 2u);
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);  // stream still terminated
}

TEST(Lexer, StrayCharacterIsDiagnosed) {
  SourceFile src{"<test>", "pram p\n  @bad"};
  std::vector<Diagnostic> diags;
  lex(src, diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].loc.line, 2u);
  EXPECT_EQ(diags[0].loc.col, 3u);
}

TEST(Lexer, RenderDiagnosticHasCaretUnderColumn) {
  SourceFile src{"bad.pram", "pram p\n  @bad"};
  std::vector<Diagnostic> diags;
  lex(src, diags);
  ASSERT_EQ(diags.size(), 1u);
  const std::string out = render_diagnostic(src, diags[0]);
  EXPECT_NE(out.find("bad.pram:2:3: error:"), std::string::npos);
  EXPECT_NE(out.find("  @bad\n"), std::string::npos);
  // Caret line: two-space gutter + (col-1) pad puts the ^ under the @.
  EXPECT_NE(out.find("\n    ^\n"), std::string::npos);
}

}  // namespace
}  // namespace apex::lang
