// Golden-file tests: every diagnostic class renders EXACTLY the committed
// message, location and caret.  Each case is tests/lang/cases/NAME.pram;
// the expected stderr of `apexcli compile` is NAME.expected.  Regenerate
// a golden (after an intentional change) with:
//
//   cd tests/lang && apexcli compile cases/NAME.pram 2> cases/NAME.expected
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "lang/compile.h"

namespace apex::lang {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Compile cases/NAME.pram with the repo-relative name apexcli would use,
/// so the rendered diagnostics are byte-equal to the committed golden.
void check_case(const std::string& name) {
  const std::string dir = std::string(APEX_SOURCE_DIR) + "/tests/lang/";
  const std::string rel = "cases/" + name + ".pram";
  SourceFile src{rel, slurp(dir + rel)};
  const CompileResult r = compile_source(src);
  ASSERT_FALSE(r.ok()) << name << " unexpectedly compiled";
  EXPECT_EQ(render_diagnostics(src, r.diagnostics),
            slurp(dir + "cases/" + name + ".expected"))
      << "golden mismatch for " << name;
}

TEST(DiagnosticsGolden, ErewWriteWrite) { check_case("erew_write"); }
TEST(DiagnosticsGolden, ErewReadRead) { check_case("erew_read"); }
TEST(DiagnosticsGolden, GatherWindowOverlap) { check_case("window_overlap"); }
TEST(DiagnosticsGolden, SameStepSegmentWrite) { check_case("segment_write"); }
TEST(DiagnosticsGolden, UndefinedVariable) { check_case("undefined_var"); }
TEST(DiagnosticsGolden, VariableIdOverflow) { check_case("id_overflow"); }

}  // namespace
}  // namespace apex::lang
