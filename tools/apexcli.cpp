// apexcli — command-line driver for the APEX library.
//
// Lets a user run any piece of the reproduction without writing C++:
//
//   apexcli agree  [--n=64] [--sched=uniform] [--seed=1] [--beta=8]
//       run standalone n-value agreement (Theorem 1 setting); print work,
//       per-property status, and a bin heatmap.
//
//   apexcli exec   [--workload=luby] [--n=8] [--scheme=nondet] [--sched=...]
//                  [--engine=batched|single_step|host]
//       run any REGISTERED PRAM workload (pram::workload_registry(): the
//       regular kernels plus the irregular suite — bfs, merge, spmv, dag)
//       through the execution scheme and verify its final-memory
//       invariants.  --engine=host runs it on the virtualized real-thread
//       executor instead of the simulator: P = n logical processors on
//       --threads OS threads (0 = one per processor), --interleave=
//       rr|random|block|partition (partition = weight-balanced placement
//       from the workload's reported per-processor weights), --alpha=N
//       clock updates per tick, --seq-cst for the fidelity memory-order
//       fallback — which is how the large registry instances (n = 64/128,
//       and the graph-scale 1e4/1e5 CSR kernels) run on a laptop.
//
//   apexcli host   [--threads=4] [--seed=1]
//       run bin-array agreement on real std::threads.
//
//   apexcli sweep  [--n=16,32,64] [--sched=uniform,burst] [--seeds=3]
//                  [--jobs=1] [--beta=8] [--csv]
//       run the Theorem-1 agreement testbed over the full (sched, n, seed)
//       grid on a worker pool (batch::SweepEngine; --jobs=0 = all hardware
//       threads) and print per-config work statistics.  Output is
//       byte-identical for every --jobs value.
//
//   apexcli fuzz   [--trials=500] [--jobs=1] [--seed=1] [--no-shrink]
//                  [--repro-dir=DIR] [--replay=FILE] [--selftest]
//       adversarial scenario fuzzing (src/check): run protocol x
//       fuzzed-schedule x seed trials with the invariant oracles attached,
//       shrink any failure to a minimal scripted-schedule prefix, and
//       (with --repro-dir) dump replayable repro files.  Output is
//       byte-identical for every --jobs value.  --replay re-runs a repro
//       file (exit 0 = failure reproduced); --selftest proves each oracle
//       catches its injected protocol mutation.
//
//   apexcli perfbench [--quick] [--steps=N] [--out=BENCH_core.json]
//       simulator-core microbenchmark: steps/second over the
//       (schedule kind x nprocs x observer on/off x grant engine) grid.
//       `single_step` rows measure the pre-batching reference engine, so
//       the batched/single_step ratio is the engine speedup.  A second
//       grid runs registered PRAM workloads through the full execution
//       scheme (regular vs irregular kernels), so data-dependent
//       throughput is on the trajectory too.  A third grid (`host_rows`)
//       runs the virtualized host executor over T x P x interleave x
//       memory-order configurations — including the P = 64/128 registry
//       scale instances — so the real-thread scaling story is measured,
//       not asserted.  A fourth grid (`graph_rows`) runs the CSR-backed
//       graph kernels at n = 1e4 under partition-aware vs round-robin
//       placement; the within-run placement ratio is part of the CI hard
//       gate.  Results are printed as tables and dumped to a JSON
//       file that CI archives as the repo's perf trajectory (soft-gated
//       against the committed baseline).
//
//   apexcli sched
//       list the adversary schedule family.
//
// Exit code 0 = run completed and all checked invariants held.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "batch/sweep.h"
#include "core/apex.h"
#include "lang/compile.h"
#include "lang/emit.h"
#include "util/cliargs.h"

using namespace apex;

namespace {

/// Strict digits-only parse (util/cliargs): " 5" and "+5" are rejected,
/// matching the "non-negative integer" the message promises.  Usage errors
/// exit 2.
std::uint64_t parse_u64(const char* flag, const std::string& value) {
  const auto v = cli::parse_u64_strict(value);
  if (!v) {
    std::fprintf(stderr, "--%s expects a non-negative integer, got '%s'\n",
                 flag, value.c_str());
    std::exit(2);
  }
  return *v;
}

/// Parsed argv plus typed accessors.  Every token is accounted for:
/// main() validates flags and positionals against the subcommand's
/// declared contract before dispatch, so typos fail loudly (exit 2)
/// instead of silently running with defaults.
struct Args : cli::ParsedArgs {
  static Args parse(int argc, char** argv) {
    return Args{cli::parse_argv(argc, argv)};
  }

  std::uint64_t u64(const char* key, std::uint64_t dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : parse_u64(key, it->second);
  }
  std::string str(const char* key, const char* dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
};

sim::ScheduleKind parse_sched(const std::string& s) {
  for (auto k : sim::all_schedule_kinds())
    if (s == sim::schedule_kind_name(k)) return k;
  std::fprintf(stderr, "unknown schedule '%s'; see `apexcli sched`\n",
               s.c_str());
  std::exit(2);
}

int cmd_agree(const Args& a) {
  agreement::TestbedConfig cfg;
  cfg.n = a.u64("n", 64);
  cfg.beta = a.u64("beta", 8);
  cfg.seed = a.u64("seed", 1);
  cfg.schedule = parse_sched(a.str("sched", "uniform"));
  agreement::AgreementTestbed tb(cfg, agreement::uniform_task(1 << 20),
                                 agreement::uniform_support(1 << 20));
  const std::uint64_t budget =
      static_cast<std::uint64_t>(500.0 * n_logn_loglogn(cfg.n)) + 1'000'000;
  const auto res = tb.run_until_agreement(budget);
  const auto st = tb.checker().check(1);
  std::printf("agreement: n=%zu sched=%s seed=%llu\n", cfg.n,
              sim::schedule_kind_name(cfg.schedule),
              static_cast<unsigned long long>(cfg.seed));
  std::printf("  work          %llu (%.2f x n lg n lglg n)\n",
              static_cast<unsigned long long>(res.work),
              static_cast<double>(res.work) / n_logn_loglogn(cfg.n));
  std::printf("  accessibility %s\n  uniqueness    %s\n  correctness   %s\n",
              st.accessibility ? "yes" : "NO", st.uniqueness ? "yes" : "NO",
              st.correctness ? "yes" : "NO");
  if (cfg.n <= 16)
    std::printf("\nbin heatmap (phase 1):\n%s",
                trace::bin_heatmap(tb.bins(), 1).c_str());
  return res.satisfied && st.all() ? 0 : 1;
}

/// Human-readable description of the n values a workload accepts, assembled
/// from its registry constraints (min_n / pow2 / even) plus the canonical
/// scale instances, so a rejected --n tells the user the whole valid range.
std::string workload_n_range(const pram::WorkloadSpec& spec) {
  std::string s = "n >= " + std::to_string(spec.min_n);
  if (spec.pow2_n) s += ", power of two";
  if (spec.even_n) s += ", even";
  if (!spec.scale_ns.empty()) {
    s += "; registered scale instances:";
    for (const std::size_t sn : spec.scale_ns)
      s += " " + std::to_string(sn);
  }
  return s;
}

/// `apexcli exec FILE.pram`: compile a kernel-language source through the
/// front-end and run it on the chosen engine — the simulator execution
/// scheme (batched or single_step grant engine, with the produced-trace
/// consistency check attached) or the virtualized host executor.  A
/// deterministic program is additionally diffed bit-for-bit against the
/// reference interpreter's replay from zero memory, so `exec` on a .pram
/// file is a full differential run, not just "it didn't crash".
int run_pram_file(const Args& a, const std::string& path) {
  lang::SourceFile src;
  const lang::CompileResult comp = lang::compile_file(path, src);
  if (!comp.ok()) {
    std::fputs(lang::render_diagnostics(src, comp.diagnostics).c_str(),
               stderr);
    return 1;
  }
  const pram::Program& p = *comp.program;
  const std::string engine = a.str("engine", "batched");
  std::printf("exec: file=%s (%s) procs=%zu vars=%zu steps=%zu engine=%s\n",
              path.c_str(), p.is_nondeterministic() ? "nondet" : "det",
              p.nthreads(), p.nvars(), p.nsteps(), engine.c_str());
  const auto interp_diff = [&p](const std::vector<pram::Word>& mem) {
    if (p.is_nondeterministic()) return 0;
    const auto ref = pram::Interpreter(p).run_deterministic(
        std::vector<pram::Word>(p.nvars(), 0));
    if (mem != ref.memory) {
      std::printf("  DIVERGED from reference interpreter replay\n");
      return 1;
    }
    std::printf("  interpreter replay: match\n");
    return 0;
  };
  if (engine == "host") {
    host::HostExecConfig hcfg;
    hcfg.seed = a.u64("seed", 1);
    hcfg.os_threads = a.u64("threads", 0);
    hcfg.clock_alpha = static_cast<double>(
        a.u64("alpha", hcfg.os_threads == 0 ? 4096 : 48));
    hcfg.seq_cst = a.kv.count("seq-cst") != 0;
    hcfg.timeout_seconds = 300.0;
    hcfg.generations = a.u64("generations", hcfg.generations);
    if (!host::parse_interleave(a.str("interleave", "rr"), hcfg.interleave)) {
      std::fprintf(stderr,
                   "unknown --interleave (rr|random|block|partition)\n");
      return 2;
    }
    if (hcfg.interleave == host::Interleave::kPartition) {
      std::fprintf(stderr,
                   "--interleave=partition needs per-processor weights, and "
                   ".pram sources carry none; use rr|random|block\n");
      return 2;
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      host::HostExecutor ex(p, hcfg);
      const auto res = ex.run();
      std::printf("  completed=%s work=%llu stamp_misses=%llu "
                  "lost_commits=%zu repaired_commits=%zu wall=%.3fs\n",
                  res.completed ? "yes" : "NO",
                  static_cast<unsigned long long>(res.total_work),
                  static_cast<unsigned long long>(res.stamp_misses),
                  res.lost_commits, res.repaired_commits, res.wall_seconds);
      if (!res.completed) {
        std::printf("  aborted: %s\n",
                    res.error.empty() ? "timeout" : res.error.c_str());
        return 1;
      }
      if (res.lost_commits != 0) {
        std::printf("  detected unrepairable preemption damage; re-running "
                    "on a fresh seed\n");
        hcfg.seed += 1000;
        continue;
      }
      const std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      return interp_diff(mem);
    }
    std::printf("  damaged on every attempt\n");
    return 1;
  }
  exec::ExecConfig cfg;
  cfg.seed = a.u64("seed", 1);
  cfg.schedule = parse_sched(a.str("sched", "uniform"));
  cfg.engine = engine == std::string("single_step")
                   ? sim::GrantEngine::kSingleStep
                   : sim::GrantEngine::kBatched;
  const exec::Scheme scheme = a.str("scheme", "nondet") == std::string("det")
                                  ? exec::Scheme::kDeterministic
                                  : exec::Scheme::kNondeterministic;
  const auto chk = exec::run_checked(p, scheme, cfg);
  std::printf("  completed=%s work=%llu incomplete_tasks=%llu "
              "stamp_misses=%llu\n",
              chk.result.completed ? "yes" : "NO",
              static_cast<unsigned long long>(chk.result.total_work),
              static_cast<unsigned long long>(chk.result.incomplete_tasks),
              static_cast<unsigned long long>(chk.result.stamp_misses));
  if (!chk.result.completed) {
    std::printf("  did not complete within budget\n");
    return 1;
  }
  if (!chk.consistency_error.empty()) {
    std::printf("  INCONSISTENT: %s\n", chk.consistency_error.c_str());
    return 1;
  }
  std::printf("  consistency: ok\n");
  return interp_diff(chk.result.memory);
}

int cmd_exec(const Args& a) {
  if (!a.positional.empty()) {
    if (a.kv.count("workload") || a.kv.count("n")) {
      std::fprintf(stderr, "exec takes either a .pram file or a registry "
                           "--workload/--n, not both\n");
      return 2;
    }
    return run_pram_file(a, a.positional[0]);
  }
  const std::string wl = a.str("workload", "luby");
  const pram::WorkloadSpec* spec = pram::find_workload(wl);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; have: %s\n", wl.c_str(),
                 pram::workload_names().c_str());
    return 2;
  }
  const std::size_t n = a.u64("n", 8);
  if (!pram::workload_supports_n(*spec, n)) {
    std::fprintf(stderr, "workload '%s' does not support n=%zu (valid: %s)\n",
                 wl.c_str(), n, workload_n_range(*spec).c_str());
    return 2;
  }
  // Registry-legal n can still be rejected by the factory (e.g. a variable
  // layout whose ids overflow uint32 at extreme n); surface that as a clean
  // diagnostic instead of an uncaught-exception backtrace.
  std::optional<pram::Program> made;
  try {
    made.emplace(spec->make(n));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "workload '%s' rejected n=%zu: %s (valid: %s)\n",
                 wl.c_str(), n, e.what(), workload_n_range(*spec).c_str());
    return 2;
  }
  const pram::Program& p = *made;
  if (a.str("engine", "batched") == std::string("host")) {
    // The virtualized host executor: P = n logical processors multiplexed
    // onto --threads OS threads (0 = one thread per processor, the legacy
    // shape).  Real preemption replaces the simulated adversary, so a rare
    // detected-damage run (lost_commits after repair) is retried on a
    // fresh seed rather than trusted.
    host::HostExecConfig hcfg;
    hcfg.seed = a.u64("seed", 1);
    hcfg.os_threads = a.u64("threads", 0);
    hcfg.clock_alpha = static_cast<double>(
        a.u64("alpha", hcfg.os_threads == 0 ? 4096 : 48));
    hcfg.seq_cst = a.kv.count("seq-cst") != 0;
    hcfg.timeout_seconds = 300.0;
    hcfg.generations = a.u64("generations", hcfg.generations);
    if (!host::parse_interleave(a.str("interleave", "rr"), hcfg.interleave)) {
      std::fprintf(stderr,
                   "unknown --interleave (rr|random|block|partition)\n");
      return 2;
    }
    if (hcfg.interleave == host::Interleave::kPartition) {
      if (spec->proc_weights == nullptr) {
        std::fprintf(stderr,
                     "--interleave=partition needs per-processor weights, "
                     "and workload '%s' does not report any; use "
                     "rr|random|block\n",
                     wl.c_str());
        return 2;
      }
      hcfg.proc_weights = spec->proc_weights(n);
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      host::HostExecutor ex(p, hcfg);
      const auto res = ex.run();
      std::printf(
          "exec: workload=%s (%s%s) n=%zu steps=%zu engine=host T=%zu "
          "interleave=%s order=%s alpha=%g\n",
          wl.c_str(), spec->deterministic ? "det" : "nondet",
          spec->irregular ? ", irregular" : "", n, p.nsteps(),
          ex.os_threads(), host::interleave_name(hcfg.interleave),
          hcfg.seq_cst ? "seq_cst" : "acq_rel", hcfg.clock_alpha);
      std::printf(
          "  completed=%s work=%llu stamp_misses=%llu lost_commits=%zu "
          "repaired_commits=%zu wall=%.3fs\n",
          res.completed ? "yes" : "NO",
          static_cast<unsigned long long>(res.total_work),
          static_cast<unsigned long long>(res.stamp_misses),
          res.lost_commits, res.repaired_commits, res.wall_seconds);
      if (!res.completed) {
        std::printf("  aborted: %s\n",
                    res.error.empty() ? "timeout" : res.error.c_str());
        return 1;
      }
      if (res.lost_commits != 0) {
        std::printf("  detected unrepairable preemption damage; re-running "
                    "on a fresh seed\n");
        hcfg.seed += 1000;
        continue;
      }
      const std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      const std::string verdict = spec->check(n, mem);
      if (!verdict.empty()) {
        std::printf("  INVARIANT VIOLATION: %s\n", verdict.c_str());
        return 1;
      }
      std::printf("  invariants: ok\n");
      return 0;
    }
    std::printf("  damaged on every attempt\n");
    return 1;
  }
  exec::ExecConfig cfg;
  cfg.seed = a.u64("seed", 1);
  cfg.schedule = parse_sched(a.str("sched", "uniform"));
  cfg.engine = a.str("engine", "batched") == std::string("single_step")
                   ? sim::GrantEngine::kSingleStep
                   : sim::GrantEngine::kBatched;
  const exec::Scheme scheme =
      a.str("scheme", "nondet") == std::string("det")
          ? exec::Scheme::kDeterministic
          : exec::Scheme::kNondeterministic;

  const auto chk = exec::run_checked(p, scheme, cfg);
  std::printf("exec: workload=%s (%s%s) n=%zu steps=%zu scheme=%s sched=%s\n",
              wl.c_str(), spec->deterministic ? "det" : "nondet",
              spec->irregular ? ", irregular" : "", n, p.nsteps(),
              exec::scheme_name(scheme),
              sim::schedule_kind_name(cfg.schedule));
  std::printf("  completed=%s work=%llu incomplete_tasks=%llu "
              "stamp_misses=%llu\n",
              chk.result.completed ? "yes" : "NO",
              static_cast<unsigned long long>(chk.result.total_work),
              static_cast<unsigned long long>(chk.result.incomplete_tasks),
              static_cast<unsigned long long>(chk.result.stamp_misses));
  if (!chk.result.completed) {
    std::printf("  did not complete within budget\n");
    return 1;
  }
  if (!chk.consistency_error.empty()) {
    std::printf("  INCONSISTENT: %s\n", chk.consistency_error.c_str());
    return 1;
  }
  const std::string verdict = spec->check(n, chk.result.memory);
  if (!verdict.empty()) {
    std::printf("  INVARIANT VIOLATION: %s\n", verdict.c_str());
    return 1;
  }
  std::printf("  invariants: ok\n");
  return 0;
}

/// `apexcli compile FILE.pram`: run the front-end only.  On success the
/// validated program's IR dump (pram::Program::to_string) goes to stdout —
/// CI diffs this against committed goldens for every in-tree kernel.  On
/// failure the file:line:col caret diagnostics go to stderr and the exit
/// code is 1; usage errors (no file) exit 2.
int cmd_compile(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "compile: expected a .pram source file\n"
                         "run 'apexcli' with no arguments for usage\n");
    return 2;
  }
  lang::SourceFile src;
  const lang::CompileResult comp = lang::compile_file(a.positional[0], src);
  if (!comp.ok()) {
    std::fputs(lang::render_diagnostics(src, comp.diagnostics).c_str(),
               stderr);
    return 1;
  }
  std::fputs(comp.program->to_string().c_str(), stdout);
  return 0;
}

/// `apexcli emit --workload=NAME --n=N`: render a registry kernel as
/// canonical .pram source (lang::emit_pram) on stdout.  This is the
/// regeneration path for the shipped kernels/*.pram files; the round-trip
/// test pins compile(emit(p)) == p bit-for-bit.
int cmd_emit(const Args& a) {
  const std::string wl = a.str("workload", "");
  if (wl.empty()) {
    std::fprintf(stderr, "emit: --workload=NAME is required (have: %s)\n",
                 pram::workload_names().c_str());
    return 2;
  }
  const pram::WorkloadSpec* spec = pram::find_workload(wl);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; have: %s\n", wl.c_str(),
                 pram::workload_names().c_str());
    return 2;
  }
  const std::size_t n = a.u64("n", 8);
  if (!pram::workload_supports_n(*spec, n)) {
    std::fprintf(stderr, "workload '%s' does not support n=%zu (valid: %s)\n",
                 wl.c_str(), n, workload_n_range(*spec).c_str());
    return 2;
  }
  std::optional<pram::Program> made;
  try {
    made.emplace(spec->make(n));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "workload '%s' rejected n=%zu: %s (valid: %s)\n",
                 wl.c_str(), n, e.what(), workload_n_range(*spec).c_str());
    return 2;
  }
  const std::string name = wl + "_n" + std::to_string(n);
  const std::string comment =
      "registry kernel '" + wl + "' at n=" + std::to_string(n) +
      ", rendered by the canonical emitter.\nRegenerate with: apexcli emit "
      "--workload=" + wl + " --n=" + std::to_string(n);
  std::fputs(lang::emit_pram(*made, name, comment).c_str(), stdout);
  return 0;
}

int cmd_host(const Args& a) {
  host::HostConfig cfg;
  cfg.nthreads = a.u64("threads", 4);
  cfg.seed = a.u64("seed", 1);
  host::HostAgreement ha(cfg, [](std::size_t, apex::Rng& rng) {
    return rng.below(1000);
  });
  const auto res = ha.run(20.0);
  std::printf("host agreement: threads=%zu satisfied=%s phase=%u "
              "cycles=%llu work=%llu wall=%.3fs\n",
              cfg.nthreads, res.satisfied ? "yes" : "NO", res.phase,
              static_cast<unsigned long long>(res.cycles),
              static_cast<unsigned long long>(res.total_work),
              res.wall_seconds);
  return res.satisfied ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmd_sweep(const Args& a) {
  struct Point {
    sim::ScheduleKind kind;
    std::size_t n;
  };
  std::vector<Point> grid;
  for (const auto& sched : split_csv(a.str("sched", "uniform")))
    for (const auto& n : split_csv(a.str("n", "16,32,64"))) {
      const auto nv = static_cast<std::size_t>(parse_u64("n", n));
      if (nv == 0) {
        std::fprintf(stderr, "sweep: --n values must be >= 1\n");
        return 2;
      }
      grid.push_back({parse_sched(sched), nv});
    }
  if (grid.empty()) {
    std::fprintf(stderr, "sweep: empty grid (check --n and --sched)\n");
    return 2;
  }
  const int seeds = std::max<int>(1, static_cast<int>(a.u64("seeds", 3)));
  const std::size_t beta = a.u64("beta", 8);
  const std::size_t jobs = a.u64("jobs", 1);

  batch::SweepSpec spec;
  spec.trials = grid.size() * static_cast<std::size_t>(seeds);
  spec.jobs = jobs;
  std::vector<batch::GroupStats> groups;
  try {
    groups = batch::SweepEngine().run_grouped(
      spec,
      [&](std::size_t i) {
        batch::TrialResult r;
        const Point& pt = grid[i / static_cast<std::size_t>(seeds)];
        agreement::TestbedConfig cfg;
        cfg.n = pt.n;
        cfg.beta = beta;
        cfg.seed = 1 + i % static_cast<std::size_t>(seeds);
        cfg.schedule = pt.kind;
        agreement::AgreementTestbed tb(cfg, agreement::uniform_task(1 << 20),
                                       agreement::uniform_support(1 << 20));
        const std::uint64_t budget =
            static_cast<std::uint64_t>(500.0 * n_logn_loglogn(pt.n)) +
            1'000'000;
        const auto res = tb.run_until_agreement(budget);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        r.sample("work", static_cast<double>(res.work));
        return r;
      },
      static_cast<std::size_t>(seeds));
  } catch (const batch::SweepError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  Table t({"sched", "n", "runs", "satisfied", "work_mean", "work_ci95",
           "work_min", "work_max", "work/nlglglg"});
  bool all_ok = true;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& group = groups[g];
    const auto& work = group.sample("work");
    if (!group.all_ok()) all_ok = false;
    t.row()
        .cell(sim::schedule_kind_name(grid[g].kind))
        .cell(static_cast<std::uint64_t>(grid[g].n))
        .cell(static_cast<std::uint64_t>(group.trials()))
        .cell(static_cast<std::uint64_t>(group.trials() - group.failed()))
        .cell(work.mean(), 0)
        .cell(work.ci95(), 0)
        .cell(work.min(), 0)
        .cell(work.max(), 0)
        .cell(work.count() ? work.mean() / n_logn_loglogn(grid[g].n) : 0.0, 2);
  }
  if (a.kv.count("csv")) t.print_csv(std::cout);
  else t.print(std::cout);
  return all_ok ? 0 : 1;
}

int cmd_sched() {
  std::printf("adversary schedules:\n");
  for (auto k : sim::all_schedule_kinds())
    std::printf("  %s\n", sim::schedule_kind_name(k));
  return 0;
}

// ---- perfbench -------------------------------------------------------------

/// The measured workload: a nonterminating three-step cycle (write, read,
/// local) on the processor's own cell.  Minimal protocol-side cost, so the
/// measurement isolates the simulator's per-grant overhead.
sim::ProcTask perf_proc(sim::Ctx& ctx, std::size_t slot) {
  for (sim::Word i = 0;; ++i) {
    co_await ctx.write(slot, i, i);
    co_await ctx.read(slot);
    co_await ctx.local();
  }
}

/// Cheap chained observer for the observer=on rows: forces the instrumented
/// grant path and consumes each event.  Span-native, so the batched engine's
/// deferred delivery is one virtual call per batch; the single_step engine
/// still lands on on_step per event.
struct PerfObserver final : sim::StepObserver {
  std::uint64_t writes = 0;
  void on_step(const sim::StepEvent& ev) override {
    writes += ev.op.kind == sim::Op::Kind::Write;
  }
  void on_steps(std::span<const sim::StepEvent> evs) override {
    std::uint64_t w = 0;
    for (const sim::StepEvent& ev : evs)
      w += ev.op.kind == sim::Op::Kind::Write;
    writes += w;
  }
};

struct PerfRow {
  const char* sched;
  std::size_t n;
  bool observer;
  const char* engine;
  std::uint64_t steps;
  double seconds;
  double steps_per_sec;
};

PerfRow run_perf_config(sim::ScheduleKind kind, std::size_t n, bool observer,
                        sim::GrantEngine engine, std::uint64_t steps,
                        int reps) {
  sim::SimConfig sc;
  sc.nprocs = n;
  sc.memory_words = n;
  sc.seed = 1;
  sc.engine = engine;
  apex::SeedTree seeds{sc.seed};
  sim::Simulator s(sc, sim::make_schedule(kind, n, seeds.schedule()));
  for (std::size_t p = 0; p < n; ++p)
    s.spawn([p](sim::Ctx& ctx) { return perf_proc(ctx, p); });
  PerfObserver obs;
  if (observer) s.add_observer(&obs);

  // Best-of-reps: the fastest repetition is the least noise-contaminated
  // estimate of the engine's cost on a shared machine.
  s.run(std::min<std::uint64_t>(steps / 4, 100'000));  // warmup
  double secs = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    s.run(steps);
    const auto t1 = std::chrono::steady_clock::now();
    const double d = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || d < secs) secs = d;
  }

  PerfRow r;
  r.sched = sim::schedule_kind_name(kind);
  r.n = n;
  r.observer = observer;
  r.engine = engine == sim::GrantEngine::kBatched ? "batched" : "single_step";
  r.steps = steps;
  r.seconds = secs;
  r.steps_per_sec = secs > 0 ? static_cast<double>(steps) / secs : 0.0;
  return r;
}

/// End-to-end workload throughput: run a registered PRAM workload through
/// the full execution scheme (nondeterministic, batched engine) and report
/// simulator work units per second.  The regular rows (prefix) anchor the
/// comparison; the irregular rows (bfs/merge/spmv/dag) put data-dependent
/// control flow and computed-index gathers on the measured trajectory.
struct WorkloadPerfRow {
  const char* workload;
  std::size_t n;
  bool completed;
  bool ok;             ///< Invariants held on the final memory.
  std::uint64_t work;
  double seconds;
  double work_per_sec;
};

WorkloadPerfRow run_workload_perf(const char* name, std::size_t n, int reps) {
  const pram::WorkloadSpec* spec = pram::find_workload(name);
  const pram::Program p = spec->make(n);
  WorkloadPerfRow r{name, n, true, true, 0, 0.0, 0.0};
  for (int rep = 0; rep < reps; ++rep) {
    exec::ExecConfig cfg;
    cfg.seed = 1 + static_cast<std::uint64_t>(rep);
    exec::Executor ex(p, exec::Scheme::kNondeterministic, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = ex.run(exec::Executor::default_budget(p));
    const auto t1 = std::chrono::steady_clock::now();
    const double d = std::chrono::duration<double>(t1 - t0).count();
    r.completed &= res.completed;
    r.ok &= res.completed && spec->check(n, res.memory).empty();
    if (rep == 0 || d < r.seconds) {
      r.seconds = d;
      r.work = res.total_work;
    }
  }
  r.work_per_sec =
      r.seconds > 0 ? static_cast<double>(r.work) / r.seconds : 0.0;
  return r;
}

/// Host-substrate throughput: a registered workload through the virtualized
/// HostExecutor (P = n logical processors on T OS threads; T = 0 is the
/// legacy one-thread-per-processor shape).  Best-of-reps wall clock; rows
/// land in BENCH_core.json as `host_rows`, putting the scaling half of the
/// benchmark story on the same committed trajectory as the simulator core.
struct HostPerfRow {
  const char* workload;
  std::size_t n;        ///< P.
  std::size_t threads;  ///< T (0 = legacy shape).
  const char* policy;
  const char* order;
  double alpha;
  bool completed;
  bool ok;
  std::uint64_t work;
  std::size_t lost;
  std::size_t repaired;
  double seconds;
  double work_per_sec;
};

HostPerfRow run_host_perf(const char* name, std::size_t n, std::size_t T,
                          host::Interleave il, bool seq_cst, double alpha,
                          int reps) {
  const pram::WorkloadSpec* spec = pram::find_workload(name);
  const pram::Program p = spec->make(n);
  HostPerfRow r{name,  n,    T,    host::interleave_name(il),
                seq_cst ? "seq_cst" : "acq_rel", alpha, true, true,
                0,     0,    0,    0.0,  0.0};
  bool timed = false;
  for (int rep = 0; rep < reps; ++rep) {
    host::HostExecConfig cfg;
    cfg.seed = 1 + static_cast<std::uint64_t>(rep);
    cfg.os_threads = T;
    cfg.interleave = il;
    cfg.seq_cst = seq_cst;
    cfg.clock_alpha = alpha;
    cfg.timeout_seconds = 300.0;
    // A rep with detected preemption damage is retried on a fresh seed
    // (same policy as bench_e12 and `exec --engine=host`): the damage is
    // counted on the row, but an untrusted run may neither win the
    // best-of-reps slot nor latch the row not-ok.
    bool clean = false;
    for (int attempt = 0; attempt < 3 && !clean; ++attempt) {
      host::HostExecutor ex(p, cfg);
      const auto res = ex.run();
      r.completed &= res.completed;
      r.lost += res.lost_commits;
      r.repaired += res.repaired_commits;
      if (!res.completed) break;
      if (res.lost_commits != 0) {
        cfg.seed += 1000;
        continue;
      }
      clean = true;
      std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      r.ok &= spec->check(n, mem).empty();
      if (!timed || res.wall_seconds < r.seconds) {
        r.seconds = res.wall_seconds;
        r.work = res.total_work;
        timed = true;
      }
    }
    r.ok &= clean;
  }
  r.work_per_sec =
      r.seconds > 0 ? static_cast<double>(r.work) / r.seconds : 0.0;
  return r;
}

/// Graph-scale throughput: the CSR-backed kernels at registry scale
/// (n = 1e4 — thousands of logical processors walking partitioned CSR row
/// slices via dynamic-window gathers) on the virtualized host executor.
/// Each workload runs under partition-aware placement AND round-robin in
/// the same invocation, so the emitted `graph_rows` carry a
/// machine-relative within-run ratio (partition / rr work-per-sec) that CI
/// hard-gates alongside the engine ratios.  Single run per config (these
/// are long, honest protocol executions); a detected-damage run is retried
/// on a fresh seed, same policy as the host rows.
struct GraphPerfRow {
  const char* workload;
  std::size_t n;
  std::size_t threads;
  const char* policy;
  bool completed;
  bool ok;
  std::uint64_t work;
  std::size_t lost;
  std::size_t repaired;
  double seconds;
  double work_per_sec;
};

GraphPerfRow run_graph_perf(const char* name, std::size_t n, std::size_t T,
                            host::Interleave il) {
  const pram::WorkloadSpec* spec = pram::find_workload(name);
  const pram::Program p = spec->make(n);
  GraphPerfRow r{name, n,    T,   host::interleave_name(il),
                 true, true, 0,   0,
                 0,    0.0,  0.0};
  host::HostExecConfig cfg;
  cfg.seed = 41;
  cfg.os_threads = T;
  cfg.interleave = il;
  cfg.clock_alpha = 32.0;  // virtualized graph operating point
  cfg.generations = 6;
  cfg.timeout_seconds = 600.0;
  if (il == host::Interleave::kPartition && spec->proc_weights != nullptr)
    cfg.proc_weights = spec->proc_weights(n);
  bool clean = false;
  for (int attempt = 0; attempt < 4 && !clean; ++attempt) {
    host::HostExecutor ex(p, cfg);
    const auto res = ex.run();
    r.completed &= res.completed;
    r.lost += res.lost_commits;
    r.repaired += res.repaired_commits;
    if (!res.completed) break;
    if (res.lost_commits != 0) {
      cfg.seed += 1000;
      continue;
    }
    clean = true;
    std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
    r.ok &= spec->check(n, mem).empty();
    r.seconds = res.wall_seconds;
    r.work = res.total_work;
  }
  r.ok &= clean;
  r.work_per_sec =
      r.seconds > 0 ? static_cast<double>(r.work) / r.seconds : 0.0;
  return r;
}

int cmd_perfbench(const Args& a) {
  const bool quick = a.kv.count("quick") != 0;
  const std::uint64_t steps =
      a.u64("steps", quick ? 1'000'000 : 4'000'000);
  const int reps = static_cast<int>(a.u64("reps", 3));
  const std::string out_path = a.str("out", "BENCH_core.json");

  std::vector<sim::ScheduleKind> kinds = {sim::ScheduleKind::kRoundRobin,
                                          sim::ScheduleKind::kUniformRandom};
  std::vector<std::size_t> ns = {4, 64};
  if (!quick) {
    kinds.push_back(sim::ScheduleKind::kBurst);
    kinds.push_back(sim::ScheduleKind::kPowerLaw);
    ns = {4, 16, 64, 256};
  }

  std::vector<PerfRow> rows;
  for (auto kind : kinds)
    for (auto n : ns)
      for (bool observer : {false, true})
        for (auto engine :
             {sim::GrantEngine::kBatched, sim::GrantEngine::kSingleStep})
          rows.push_back(
              run_perf_config(kind, n, observer, engine, steps, reps));

  // Workload rows: full-scheme throughput, regular vs irregular kernels.
  // Quick mode keeps one regular anchor plus one irregular (gather-heavy)
  // config so the CI perf smoke tracks data-dependent throughput too.
  std::vector<std::pair<const char*, std::size_t>> wl_grid = {
      {"prefix", 8}, {"spmv", 8}};
  if (!quick)
    wl_grid = {{"prefix", 8},  {"prefix", 16}, {"bfs", 8},  {"bfs", 16},
               {"merge", 8},   {"merge", 16},  {"spmv", 8}, {"spmv", 16},
               {"dag", 8},     {"dag", 16}};
  std::vector<WorkloadPerfRow> wl_rows;
  for (const auto& [name, n] : wl_grid)
    wl_rows.push_back(run_workload_perf(name, n, reps));

  // Host rows: the virtualized executor's T x P x policy x order grid.
  // The legacy-shape prefix row (T = 0, alpha = 4096) anchors against the
  // committed host_pre_virtualization block; the P = 64 rows are the
  // scaling configurations the one-thread-per-processor design never ran.
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  struct HostPoint {
    const char* wl;
    std::size_t n, T;
    host::Interleave il;
    bool seq_cst;
    double alpha;
  };
  const auto kBlk = host::Interleave::kBlock;
  const auto kRR = host::Interleave::kRoundRobin;
  std::vector<HostPoint> host_grid = {
      {"prefix", 8, 0, kRR, false, 4096.0},               // legacy shape
      {"prefix", 8, std::min<std::size_t>(hw, 8), kBlk, false, 4096.0},
      {"spmv", 64, 2, kBlk, false, 48.0},
      {"spmv", 64, 2, kBlk, true, 48.0},                  // fidelity fallback
  };
  if (!quick) {
    host_grid.push_back({"spmv", 64, 2, kRR, false, 48.0});
    host_grid.push_back({"spmv", 64, 2, host::Interleave::kRandom, false,
                         48.0});
    host_grid.push_back({"bfs", 64, 2, kBlk, false, 48.0});
    host_grid.push_back({"dag", 64, 2, kBlk, false, 48.0});
    host_grid.push_back({"spmv", 128, 4, kBlk, false, 48.0});
    host_grid.push_back({"bfs", 128, 4, kBlk, false, 48.0});
  }
  std::vector<HostPerfRow> host_rows;
  for (const auto& pt : host_grid)
    host_rows.push_back(
        run_host_perf(pt.wl, pt.n, pt.T, pt.il, pt.seq_cst, pt.alpha, reps));

  // Graph-scale rows: each CSR kernel at n = 1e4 under partition-aware
  // placement vs round-robin (the within-run ratio CI hard-gates).
  std::vector<GraphPerfRow> graph_rows;
  for (const char* gname : {"bfs", "spmv"})
    for (auto il : {host::Interleave::kPartition, host::Interleave::kRoundRobin})
      graph_rows.push_back(run_graph_perf(gname, 10'000, 2, il));

  Table t({"sched", "n", "observer", "engine", "steps", "sec", "steps/sec"});
  for (const auto& r : rows)
    t.row()
        .cell(r.sched)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(r.observer ? "on" : "off")
        .cell(r.engine)
        .cell(r.steps)
        .cell(r.seconds, 3)
        .cell(r.steps_per_sec, 0);
  Table wt({"workload", "n", "completed", "invariants", "work", "sec",
            "work/sec"});
  for (const auto& r : wl_rows)
    wt.row()
        .cell(r.workload)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(r.completed ? "yes" : "NO")
        .cell(r.ok ? "ok" : "VIOLATED")
        .cell(r.work)
        .cell(r.seconds, 3)
        .cell(r.work_per_sec, 0);
  Table ht({"workload", "P", "T", "policy", "order", "alpha", "completed",
            "invariants", "lost", "repaired", "work", "sec", "work/sec"});
  for (const auto& r : host_rows)
    ht.row()
        .cell(r.workload)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(static_cast<std::uint64_t>(r.threads))
        .cell(r.policy)
        .cell(r.order)
        .cell(r.alpha, 0)
        .cell(r.completed ? "yes" : "NO")
        .cell(r.ok ? "ok" : "VIOLATED")
        .cell(static_cast<std::uint64_t>(r.lost))
        .cell(static_cast<std::uint64_t>(r.repaired))
        .cell(r.work)
        .cell(r.seconds, 3)
        .cell(r.work_per_sec, 0);
  Table gt({"workload", "n", "T", "policy", "completed", "invariants",
            "lost", "repaired", "work", "sec", "work/sec"});
  for (const auto& r : graph_rows)
    gt.row()
        .cell(r.workload)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(static_cast<std::uint64_t>(r.threads))
        .cell(r.policy)
        .cell(r.completed ? "yes" : "NO")
        .cell(r.ok ? "ok" : "VIOLATED")
        .cell(static_cast<std::uint64_t>(r.lost))
        .cell(static_cast<std::uint64_t>(r.repaired))
        .cell(r.work)
        .cell(r.seconds, 3)
        .cell(r.work_per_sec, 0);
  if (a.kv.count("csv")) {
    t.print_csv(std::cout);
    wt.print_csv(std::cout);
    ht.print_csv(std::cout);
    gt.print_csv(std::cout);
  } else {
    t.print(std::cout);
    std::printf("\nworkload throughput (full scheme, nondet, batched):\n");
    wt.print(std::cout);
    std::printf("\nhost throughput (virtualized executor, P procs on T "
                "threads; T=0 = one thread per proc):\n");
    ht.print(std::cout);
    std::printf("\ngraph-scale throughput (CSR kernels, P=min(n,4096) on "
                "T=2 threads, alpha=32):\n");
    gt.print(std::cout);
  }
  for (const auto& b : graph_rows) {
    if (std::string(b.policy) != "partition") continue;
    for (const auto& s : graph_rows)
      if (std::string(s.workload) == b.workload && s.n == b.n &&
          std::string(s.policy) == "rr" && s.work_per_sec > 0)
        std::printf("graph %s n=%zu: partition/rr placement ratio %.2fx\n",
                    b.workload, b.n, b.work_per_sec / s.work_per_sec);
  }

  // Engine speedup on the headline configuration (round_robin, observer
  // off): min over n, so the claim holds at every measured size.  NOTE:
  // the in-tree single_step reference shares the reworked awaiter/Ctx
  // architecture and is itself substantially faster than the genuine
  // pre-refactor engine — the committed BENCH_core.json carries the
  // pre-refactor numbers (measured against the parent commit) alongside.
  double speedup_min = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& b = rows[i];
    if (std::string(b.sched) != "round_robin" || b.observer ||
        std::string(b.engine) != "batched")
      continue;
    for (const auto& s : rows) {
      if (std::string(s.sched) == "round_robin" && !s.observer && s.n == b.n &&
          std::string(s.engine) == "single_step" && s.steps_per_sec > 0) {
        const double sp = b.steps_per_sec / s.steps_per_sec;
        speedup_min = speedup_min == 0.0 ? sp : std::min(speedup_min, sp);
      }
    }
  }
  std::printf("\nbatched vs single_step reference (round_robin, no observer, "
              "min over n): %.2fx\n", speedup_min);

  // Instrumented-path ratios (round_robin, min over n).  The first is the
  // observer-batching headline: batched deferred span delivery vs the
  // single_step engine's per-step instrumented delivery (the genuine
  // pre-batching observation path).  The second bounds what instrumentation
  // costs relative to the uninstrumented fast path on the same engine.
  double instr_speedup_min = 0.0;
  double instr_overhead_min = 0.0;
  for (const auto& b : rows) {
    if (std::string(b.sched) != "round_robin" || !b.observer ||
        std::string(b.engine) != "batched")
      continue;
    for (const auto& s : rows) {
      if (std::string(s.sched) != "round_robin" || s.n != b.n) continue;
      if (s.observer && std::string(s.engine) == "single_step" &&
          s.steps_per_sec > 0) {
        const double sp = b.steps_per_sec / s.steps_per_sec;
        instr_speedup_min =
            instr_speedup_min == 0.0 ? sp : std::min(instr_speedup_min, sp);
      }
      if (!s.observer && std::string(s.engine) == "batched" &&
          s.steps_per_sec > 0) {
        const double ov = b.steps_per_sec / s.steps_per_sec;
        instr_overhead_min =
            instr_overhead_min == 0.0 ? ov : std::min(instr_overhead_min, ov);
      }
    }
  }
  std::printf("instrumented batched vs single_step per-step delivery "
              "(round_robin, observer on, min over n): %.2fx\n",
              instr_speedup_min);
  std::printf("instrumented vs no-observer on the batched engine "
              "(round_robin, min over n): %.2fx\n", instr_overhead_min);

  // Fuzz throughput: a pinned corpus slice through the full trial stack
  // (testbed construction, oracles on the instrumented path, verdicts).
  // Single job so the number tracks per-core trial cost, not parallelism.
  const std::size_t fuzz_trials = quick ? 10 : 40;
  double fuzz_secs = 0.0;
  std::size_t fuzz_failures = 0;
  {
    check::FuzzConfig fc;
    fc.trials = fuzz_trials;
    fc.seed = 1;
    fc.jobs = 1;
    fc.shrink = false;
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = check::run_fuzz(fc);
    const auto t1 = std::chrono::steady_clock::now();
    fuzz_secs = std::chrono::duration<double>(t1 - t0).count();
    fuzz_failures = rep.failures.size();
  }
  const double fuzz_tps =
      fuzz_secs > 0 ? static_cast<double>(fuzz_trials) / fuzz_secs : 0.0;
  std::printf("fuzz throughput: %zu trials in %.2fs = %.2f trials/sec "
              "(%zu failures)\n",
              fuzz_trials, fuzz_secs, fuzz_tps, fuzz_failures);

  // The committed BENCH_core.json carries hand-added provenance blocks
  // ("pre_refactor": the genuine pre-batching engine measured from the
  // parent commit of PR 3; "host_pre_virtualization": the one-thread-per-
  // processor host executor measured from the parent commit of the
  // virtualization PR; "pre_observer_batching": the per-step observer
  // delivery path measured from the parent commit of the observer-batching
  // PR).  Rewriting the file must not destroy them: lift each block out of
  // any existing file and splice it back into the fresh output.
  std::vector<std::string> kept_blocks;
  {
    std::ifstream prev(out_path);
    if (prev) {
      std::string text((std::istreambuf_iterator<char>(prev)),
                       std::istreambuf_iterator<char>());
      for (const char* keyname : {"pre_refactor", "host_pre_virtualization",
                                  "pre_observer_batching"}) {
        const auto key = text.find("\"" + std::string(keyname) + "\"");
        const auto open = text.find('{', key);
        if (key == std::string::npos || open == std::string::npos) continue;
        // Balanced-brace scan that skips JSON string literals, so braces
        // inside the block's "note" text cannot truncate the extraction.
        int depth = 0;
        bool in_string = false;
        for (std::size_t i = open; i < text.size(); ++i) {
          const char c = text[i];
          if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
          }
          if (c == '"') in_string = true;
          else if (c == '{') ++depth;
          else if (c == '}' && --depth == 0) {
            kept_blocks.push_back(text.substr(key, i + 1 - key));
            break;
          }
        }
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "perfbench: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n  \"bench\": \"apex_core_steps_per_sec\",\n  \"version\": 1,\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"steps_per_run\": " << steps << ",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", speedup_min);
  out << "  \"speedup_round_robin_no_observer_vs_single_step\": " << buf
      << ",\n";
  std::snprintf(buf, sizeof buf, "%.3f", instr_speedup_min);
  out << "  \"speedup_round_robin_observer_vs_single_step\": " << buf
      << ",\n";
  std::snprintf(buf, sizeof buf, "%.3f", instr_overhead_min);
  out << "  \"instrumented_over_no_observer_batched\": " << buf << ",\n";
  std::snprintf(buf, sizeof buf, "%.3f", fuzz_tps);
  out << "  \"fuzz\": {\"trials\": " << fuzz_trials << ", \"seed\": 1, "
      << "\"jobs\": 1, \"failures\": " << fuzz_failures
      << ", \"trials_per_sec\": " << buf << "},\n";
  for (const auto& block : kept_blocks) out << "  " << block << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::snprintf(buf, sizeof buf, "%.1f", r.steps_per_sec);
    out << "    {\"sched\": \"" << r.sched << "\", \"n\": " << r.n
        << ", \"observer\": " << (r.observer ? "true" : "false")
        << ", \"engine\": \"" << r.engine << "\", \"steps\": " << r.steps
        << ", \"steps_per_sec\": " << buf << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"workload_rows\": [\n";
  for (std::size_t i = 0; i < wl_rows.size(); ++i) {
    const auto& r = wl_rows[i];
    std::snprintf(buf, sizeof buf, "%.1f", r.work_per_sec);
    out << "    {\"workload\": \"" << r.workload << "\", \"n\": " << r.n
        << ", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"invariants_ok\": " << (r.ok ? "true" : "false")
        << ", \"work\": " << r.work << ", \"work_per_sec\": " << buf << "}"
        << (i + 1 < wl_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"host_rows\": [\n";
  for (std::size_t i = 0; i < host_rows.size(); ++i) {
    const auto& r = host_rows[i];
    std::snprintf(buf, sizeof buf, "%.1f", r.work_per_sec);
    out << "    {\"workload\": \"" << r.workload << "\", \"n\": " << r.n
        << ", \"threads\": " << r.threads << ", \"policy\": \"" << r.policy
        << "\", \"order\": \"" << r.order << "\", \"alpha\": " << r.alpha
        << ", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"invariants_ok\": " << (r.ok ? "true" : "false")
        << ", \"lost_commits\": " << r.lost
        << ", \"repaired_commits\": " << r.repaired
        << ", \"work\": " << r.work << ", \"work_per_sec\": " << buf << "}"
        << (i + 1 < host_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"graph_rows\": [\n";
  for (std::size_t i = 0; i < graph_rows.size(); ++i) {
    const auto& r = graph_rows[i];
    std::snprintf(buf, sizeof buf, "%.1f", r.work_per_sec);
    out << "    {\"workload\": \"" << r.workload << "\", \"n\": " << r.n
        << ", \"threads\": " << r.threads << ", \"policy\": \"" << r.policy
        << "\", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"invariants_ok\": " << (r.ok ? "true" : "false")
        << ", \"lost_commits\": " << r.lost
        << ", \"repaired_commits\": " << r.repaired
        << ", \"work\": " << r.work << ", \"work_per_sec\": " << buf << "}"
        << (i + 1 < graph_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu core + %zu workload + %zu host + %zu graph "
              "configs)\n",
              out_path.c_str(), rows.size(), wl_rows.size(),
              host_rows.size(), graph_rows.size());
  return 0;
}

int cmd_fuzz(const Args& a) {
  if (a.kv.count("selftest")) {
    const auto cases = check::run_selftest();
    Table t({"mutation", "oracle", "caught", "baseline_clean"});
    for (const auto& c : cases)
      t.row()
          .cell(check::mutation_name(c.mutation))
          .cell(c.expected_oracle)
          .cell(c.caught ? "yes" : "NO")
          .cell(c.clean_baseline ? "yes" : "NO");
    t.print(std::cout);
    for (const auto& c : cases)
      if (!c.caught || !c.clean_baseline)
        std::printf("FAIL %s: %s\n", check::mutation_name(c.mutation),
                    c.detail.c_str());
    const bool ok = check::selftest_ok(cases);
    std::printf("oracle self-test: %s (%zu mutations)\n",
                ok ? "all mutations caught" : "NOT all mutations caught",
                cases.size());
    return ok ? 0 : 1;
  }

  check::FuzzConfig cfg;
  cfg.skew_ticks = a.u64("skew", 2);
  cfg.clobber_bound = static_cast<std::uint32_t>(a.u64("clobber-bound", 0));

  if (a.kv.count("replay")) {
    check::Repro repro;
    try {
      repro = check::load_repro(a.str("replay", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    const auto out = check::replay_repro(repro, cfg);
    std::printf("replay: protocol=%s n=%zu seed=%llu budget=%llu "
                "script=%zu grants\n",
                check::fuzz_protocol_name(repro.protocol), repro.n,
                static_cast<unsigned long long>(repro.seed),
                static_cast<unsigned long long>(repro.budget),
                repro.script.size());
    if (out.failed)
      std::printf("  outcome: FAILED %s: %s\n", out.oracle.c_str(),
                  out.message.c_str());
    else
      std::printf("  outcome: clean (no oracle fired)\n");
    const bool reproduced = out.failed && out.oracle == repro.oracle;
    std::printf("  expected oracle '%s' %s\n", repro.oracle.c_str(),
                reproduced ? "reproduced" : "did NOT reproduce");
    return reproduced ? 0 : 1;
  }

  cfg.trials = a.u64("trials", 500);
  cfg.jobs = a.u64("jobs", 1);
  cfg.seed = a.u64("seed", 1);
  cfg.shrink = !a.kv.count("no-shrink");
  cfg.repro_dir = a.str("repro-dir", "");
  cfg.grammar_only = a.kv.count("grammar") != 0;

  const auto rep = check::run_fuzz(cfg);
  if (cfg.grammar_only)
    std::printf("fuzz: %zu trials (grammar-generated programs x fuzzed "
                "oblivious schedules), seed=%llu\n",
                rep.trials, static_cast<unsigned long long>(cfg.seed));
  else
    std::printf("fuzz: %zu trials (agreement+consensus+workload+grammar x "
                "fuzzed oblivious schedules), seed=%llu\n",
                rep.trials, static_cast<unsigned long long>(cfg.seed));
  for (const auto& f : rep.failures) {
    std::printf("FAILURE trial=%zu protocol=%s%s%s n=%zu seed=%llu oracle=%s\n",
                f.trial, check::fuzz_protocol_name(f.protocol),
                f.workload.empty() ? "" : " workload=",
                f.workload.c_str(), f.n,
                static_cast<unsigned long long>(f.seed), f.oracle.c_str());
    std::printf("  %s\n", f.message.c_str());
    if (!f.schedule.empty())
      std::printf("  schedule: %.200s\n", f.schedule.c_str());
    if (!f.repro_script.empty())
      std::printf("  shrunk to %zu-grant scripted prefix\n",
                  f.repro_script.size());
    if (!f.repro_path.empty())
      std::printf("  repro: %s\n", f.repro_path.c_str());
  }
  std::printf("fuzz verdict: %s (%zu failures)\n",
              rep.ok() ? "PASS — all invariants held" : "FAIL",
              rep.failures.size());
  return rep.ok() ? 0 : 1;
}

/// Per-subcommand contract: the exact flag set it accepts plus how many
/// positional arguments it takes.  main() rejects anything outside the
/// contract with exit 2 before dispatch — the strict-argument guarantee
/// the regression tests pin.
struct CmdContract {
  const char* name;
  std::vector<std::string> flags;
  std::size_t max_positional;
};

const std::vector<CmdContract>& command_contracts() {
  static const std::vector<CmdContract> kContracts = {
      {"agree", {"n", "sched", "seed", "beta"}, 0},
      {"exec",
       {"workload", "n", "scheme", "sched", "seed", "engine", "threads",
        "interleave", "alpha", "generations", "seq-cst"},
       1},  // the optional positional is a .pram source file
      {"compile", {}, 1},
      {"emit", {"workload", "n"}, 0},
      {"host", {"threads", "seed"}, 0},
      {"sweep", {"n", "sched", "seeds", "jobs", "beta", "csv"}, 0},
      {"fuzz",
       {"trials", "jobs", "seed", "no-shrink", "repro-dir", "replay",
        "selftest", "skew", "clobber-bound", "grammar"},
       0},
      {"perfbench", {"quick", "steps", "reps", "out", "csv"}, 0},
      {"sched", {}, 0},
  };
  return kContracts;
}

int usage(const std::string& cmd) {
  std::printf(
      "usage: apexcli "
      "<agree|exec|compile|emit|host|sweep|fuzz|perfbench|sched> "
      "[--key=value ...]\n"
      "  agree --n=64 --sched=uniform --seed=1 --beta=8\n"
      "  exec  --workload=NAME --n=8 --scheme=nondet|det --sched=uniform\n"
      "        --seed=1 --engine=batched|single_step|host\n"
      "        (host engine: --threads=T "
      "--interleave=rr|random|block|partition\n"
      "         --alpha=N --generations=G --seq-cst; T=0 = one thread per\n"
      "         processor; partition uses the workload's reported\n"
      "         per-processor weights)\n"
      "        (workloads: %s)\n"
      "  exec  FILE.pram [--engine=...] [--sched=...] [--seed=1]\n"
      "        compile a kernel-language source and run it (deterministic\n"
      "        programs are diffed against the reference interpreter)\n"
      "  compile FILE.pram     front-end only: IR dump to stdout, or\n"
      "        file:line:col diagnostics to stderr (exit 1)\n"
      "  emit  --workload=NAME --n=8   render a registry kernel as .pram\n"
      "  host  --threads=4 --seed=1\n"
      "  sweep --n=16,32,64 --sched=uniform,burst --seeds=3 --jobs=1 --beta=8\n"
      "        [--csv]\n"
      "  fuzz  --trials=500 --jobs=1 --seed=1 [--no-shrink] [--grammar]\n"
      "        [--repro-dir=DIR] [--replay=FILE] [--selftest]\n"
      "  perfbench [--quick] [--steps=N] [--out=BENCH_core.json] [--csv]\n"
      "  sched\n",
      pram::workload_names().c_str());
  return cmd.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = Args::parse(argc, argv);
  const CmdContract* contract = nullptr;
  for (const auto& c : command_contracts())
    if (a.cmd == c.name) contract = &c;
  if (contract == nullptr) {
    if (!a.cmd.empty())
      std::fprintf(stderr, "apexcli: unknown subcommand '%s'\n",
                   a.cmd.c_str());
    return usage(a.cmd);
  }
  const std::string err =
      cli::validate_args(a, contract->flags, contract->max_positional);
  if (!err.empty()) {
    std::fprintf(stderr, "apexcli: %s\n", err.c_str());
    std::fprintf(stderr, "run 'apexcli' with no arguments for usage\n");
    return 2;
  }
  if (a.cmd == "agree") return cmd_agree(a);
  if (a.cmd == "exec") return cmd_exec(a);
  if (a.cmd == "compile") return cmd_compile(a);
  if (a.cmd == "emit") return cmd_emit(a);
  if (a.cmd == "host") return cmd_host(a);
  if (a.cmd == "sweep") return cmd_sweep(a);
  if (a.cmd == "fuzz") return cmd_fuzz(a);
  if (a.cmd == "perfbench") return cmd_perfbench(a);
  return cmd_sched();
}
